package vcomputebench_test

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"vcomputebench/internal/calibrate"
	"vcomputebench/internal/core"
	"vcomputebench/internal/experiments"
	"vcomputebench/internal/hw"
	"vcomputebench/internal/platforms"
	_ "vcomputebench/internal/rodinia/suite"
)

// replayBenchmarks are the benchmarks the replay-determinism tests cover:
// vectoradd measures with a host stopwatch, membandwidth derives its kernel
// time from device-side observables (a Vulkan submission's dispatch-time sum,
// CUDA event timers, a loop summing OpenCL profiling events) plus a
// throughput extra, and bfs is the iterative worst case — a data-dependent
// phase loop with mid-measurement device readbacks. Between them every
// reading kind and binding path of the snapshot layer is exercised.
var replayBenchmarks = []string{"vectoradd", "membandwidth", "bfs"}

func smallestWorkload(t *testing.T, b core.Benchmark, class hw.Class) core.Workload {
	t.Helper()
	ws := b.Workloads(class)
	if len(ws) == 0 {
		t.Fatalf("%s has no workloads for class %s", b.Name(), class)
	}
	return ws[0]
}

// runCell runs one cell with the given runner, skipping excluded combinations.
func runCell(t *testing.T, r *core.Runner, p *platforms.Platform, name string, api hw.API) (*core.Result, bool) {
	t.Helper()
	b, err := core.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(p, b, api, smallestWorkload(t, b, p.Profile.Class))
	if err != nil {
		var excl *core.ExclusionError
		if asExclusion(err, &excl) {
			return nil, false
		}
		t.Fatalf("%s/%s on %s: %v", name, api, p.ID, err)
	}
	return res, true
}

func asExclusion(err error, target **core.ExclusionError) bool {
	for err != nil {
		if e, ok := err.(*core.ExclusionError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// requireSameResult asserts two results are identical in every field,
// including the JSON encoding the versioned results schema would emit.
func requireSameResult(t *testing.T, label string, want, got *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: results differ\n  executed: %+v\n  replayed: %+v", label, want, got)
	}
	wj, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gj, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(wj) != string(gj) {
		t.Fatalf("%s: JSON encodings differ\n  executed: %s\n  replayed: %s", label, wj, gj)
	}
}

// TestReplayMatchesExecution pins the execute/replay contract on every
// platform and API: a cell served from the snapshot cache (analytic replay)
// is byte-identical to the same cell executed fresh — durations, repetition
// statistics and achieved-bandwidth extras included.
func TestReplayMatchesExecution(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("single-threaded determinism matrix; executing every cell three times under the race detector adds minutes, not coverage")
	}
	for _, p := range platforms.All() {
		for _, api := range p.Profile.SupportedAPIs() {
			for _, name := range replayBenchmarks {
				p, api, name := p, api, name
				t.Run(p.ID+"/"+string(api)+"/"+name, func(t *testing.T) {
					plain := &core.Runner{Repetitions: 2, Seed: 42}
					executed, ok := runCell(t, plain, p, name, api)
					if !ok {
						t.Skipf("%s/%s excluded on %s", name, api, p.ID)
					}

					cached := &core.Runner{Repetitions: 2, Seed: 42, Cache: core.NewSnapshotCache(0)}
					miss, _ := runCell(t, cached, p, name, api) // executes + snapshots
					hit, _ := runCell(t, cached, p, name, api)  // replays the snapshot

					st := cached.Cache.Stats()
					if st.Misses != 1 || st.Hits != 1 {
						t.Fatalf("cache stats = %+v, want exactly 1 miss then 1 hit", st)
					}
					requireSameResult(t, "execute vs cached-execute", executed, miss)
					requireSameResult(t, "execute vs replay", executed, hit)
				})
			}
		}
	}
}

// perturbKnobs returns a clone of the platform with every sweepable timing
// knob moved, exactly as a calibration sweep's candidate profiles do. The
// execution fingerprint is unchanged, so a snapshot recorded on the original
// platform replays under the clone.
func perturbKnobs(p *platforms.Platform) *platforms.Platform {
	cand := calibrate.ClonePlatform(p)
	for api, drv := range cand.Profile.Drivers {
		if !drv.Supported {
			continue
		}
		drv.KernelLaunchOverhead = drv.KernelLaunchOverhead * 13 / 10
		drv.SyncLatency = drv.SyncLatency * 3 / 4
		drv.CompilerEfficiency *= 0.9
		drv.MemoryEfficiency *= 0.85
		if drv.ScatteredMemoryEfficiency > 0 {
			drv.ScatteredMemoryEfficiency *= 1.1
			if drv.ScatteredMemoryEfficiency > 1 {
				drv.ScatteredMemoryEfficiency = 1
			}
		}
		if drv.LocalMemoryAutoOpt {
			drv.LocalMemoryOptFactor *= 0.8
		}
		cand.Profile.Drivers[api] = drv
	}
	return cand
}

// TestReplayUnderModifiedProfile pins the property the calibration sweep
// rests on: replaying a snapshot under a candidate profile with different
// DriverProfile knob values is bit-identical to executing the full benchmark
// afresh under that candidate.
func TestReplayUnderModifiedProfile(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("single-threaded determinism matrix; see TestReplayMatchesExecution")
	}
	for _, p := range platforms.All() {
		perturbed := perturbKnobs(p)
		if fp, want := perturbed.Profile.ExecutionFingerprint(), p.Profile.ExecutionFingerprint(); fp != want {
			t.Fatalf("perturbing timing knobs changed the execution fingerprint:\n  %s\n  %s", fp, want)
		}
		cached := &core.Runner{Repetitions: 2, Seed: 42, Cache: core.NewSnapshotCache(0)}
		fresh := &core.Runner{Repetitions: 2, Seed: 42}
		for _, api := range p.Profile.SupportedAPIs() {
			for _, name := range replayBenchmarks {
				p, perturbed, api, name := p, perturbed, api, name
				t.Run(p.ID+"/"+string(api)+"/"+name, func(t *testing.T) {
					if _, ok := runCell(t, cached, p, name, api); !ok { // execute + snapshot on the base profile
						t.Skipf("%s/%s excluded on %s", name, api, p.ID)
					}
					replayed, _ := runCell(t, cached, perturbed, name, api) // cache hit: replay under moved knobs
					executed, _ := runCell(t, fresh, perturbed, name, api)  // ground truth: fresh run under moved knobs
					requireSameResult(t, "fresh-on-candidate vs replay-on-candidate", executed, replayed)
				})
			}
		}
	}
}

// TestSuiteCacheParallelDeterminism runs a full figure twice — serial without
// a cache, parallel with a shared cache primed by a previous run — and
// requires byte-identical JSON documents: the cache must not perturb results
// for any -parallel value.
func TestSuiteCacheParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full figure; skipped with -short")
	}
	p, err := platforms.ByID(platforms.IDRX560)
	if err != nil {
		t.Fatal(err)
	}
	apis := []hw.API{hw.APIVulkan, hw.APIOpenCL}

	serial, err := experiments.BandwidthDocument("fig1b", p, apis, experiments.Options{Repetitions: 1, Seed: 42, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	cache := core.NewSnapshotCache(0)
	if _, err := experiments.BandwidthDocument("fig1b", p, apis, experiments.Options{Repetitions: 1, Seed: 42, Parallelism: 1, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	parallel, err := experiments.BandwidthDocument("fig1b", p, apis, experiments.Options{Repetitions: 1, Seed: 42, Parallelism: 8, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("cache stats = %+v, want the second run to be served entirely from the first", st)
	}

	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Fatalf("cached parallel run differs from serial uncached run:\n%s\n%s", sj, pj)
	}
}

// TestReplayIsFast is a sanity bound, not a benchmark: replaying a recorded
// cell must be orders of magnitude cheaper than executing it. It guards
// against a regression that silently reintroduces execution on the replay
// path (e.g. a cache miss caused by an unstable fingerprint).
func TestReplayIsFast(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("wall-clock bound is meaningless under the race detector's slowdown")
	}
	p, err := platforms.ByID(platforms.IDGTX1050Ti)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Get("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	w := b.Workloads(p.Profile.Class)[0]
	r := &core.Runner{Repetitions: 1, Seed: 42, Cache: core.NewSnapshotCache(0)}
	if _, err := r.Run(p, b, hw.APIVulkan, w); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	const replays = 50
	for i := 0; i < replays; i++ {
		if _, err := r.Run(p, b, hw.APIVulkan, w); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Cache.Stats(); st.Misses != 1 || st.Hits != replays {
		t.Fatalf("cache stats = %+v, want 1 miss and %d hits", st, replays)
	}
	if avg := time.Since(start) / replays; avg > 50*time.Millisecond {
		t.Fatalf("average replay took %v, want well under the cost of an execution", avg)
	}
}
