package vcomputebench_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vcomputebench/internal/codeversion"
	"vcomputebench/internal/core"
	"vcomputebench/internal/experiments"
	"vcomputebench/internal/hw"
	"vcomputebench/internal/platforms"
	_ "vcomputebench/internal/rodinia/suite"
)

// openStore opens a tiered store (fresh memory tier over dir) under the real
// build code-version fingerprint, exactly as `vcbench -store dir` does. Each
// call simulates a new process attaching to the same persistent store.
func openStore(t *testing.T, dir string) *core.TieredStore {
	t.Helper()
	disk, err := core.OpenDiskStore(dir, codeversion.Fingerprint(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewTieredStore(nil, disk)
}

// TestPersistentStoreReplayMatchesExecution pins the cross-process replay
// contract on every platform and API: a cell served from a disk store written
// by a previous store instance (a previous process, as far as the codec is
// concerned) is byte-identical to the same cell executed fresh — and executes
// zero cells doing it.
func TestPersistentStoreReplayMatchesExecution(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("single-threaded determinism matrix; see TestReplayMatchesExecution")
	}
	for _, p := range platforms.All() {
		for _, api := range p.Profile.SupportedAPIs() {
			for _, name := range replayBenchmarks {
				p, api, name := p, api, name
				t.Run(p.ID+"/"+string(api)+"/"+name, func(t *testing.T) {
					plain := &core.Runner{Repetitions: 2, Seed: 42}
					executed, ok := runCell(t, plain, p, name, api)
					if !ok {
						t.Skipf("%s/%s excluded on %s", name, api, p.ID)
					}

					dir := t.TempDir()
					cold := &core.Runner{Repetitions: 2, Seed: 42, Cache: openStore(t, dir)}
					first, _ := runCell(t, cold, p, name, api) // executes + persists

					warm := &core.Runner{Repetitions: 2, Seed: 42, Cache: openStore(t, dir)}
					replayed, _ := runCell(t, warm, p, name, api) // pure replay from disk

					if st := warm.Cache.Stats(); st.Executions != 0 || st.Hits != 1 {
						t.Fatalf("warm store stats = %+v, want 0 executions and 1 hit", st)
					}
					requireSameResult(t, "execute vs cold-store execute", executed, first)
					requireSameResult(t, "execute vs warm-store replay", executed, replayed)
				})
			}
		}
	}
}

// TestPersistentStoreWrongCodeVersion: a store opened under a different
// code-version fingerprint must see none of the entries — the cell
// re-executes rather than replaying a snapshot recorded by different code.
func TestPersistentStoreWrongCodeVersion(t *testing.T) {
	p, err := platforms.ByID(platforms.IDGTX1050Ti)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cold := &core.Runner{Repetitions: 1, Seed: 42, Cache: openStore(t, dir)}
	if _, ok := runCell(t, cold, p, "vectoradd", hw.APIVulkan); !ok {
		t.Fatal("vectoradd/vulkan unexpectedly excluded")
	}

	otherDisk, err := core.OpenDiskStore(dir, strings.Repeat("0", 64), nil)
	if err != nil {
		t.Fatal(err)
	}
	other := &core.Runner{Repetitions: 1, Seed: 42, Cache: core.NewTieredStore(nil, otherDisk)}
	if _, ok := runCell(t, other, p, "vectoradd", hw.APIVulkan); !ok {
		t.Fatal("vectoradd/vulkan unexpectedly excluded")
	}
	if st := other.Cache.Stats(); st.Executions != 1 || st.Hits != 0 {
		t.Fatalf("stats under a different code version = %+v, want a re-execution and no hits", st)
	}
}

// TestPersistentStoreSuiteWarmRun is the end-to-end acceptance property: a
// full paper figure against a warm store executes zero cells at any
// parallelism and produces a byte-identical document.
func TestPersistentStoreSuiteWarmRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full figure repeatedly; skipped with -short")
	}
	p, err := platforms.ByID(platforms.IDRX560)
	if err != nil {
		t.Fatal(err)
	}
	apis := []hw.API{hw.APIVulkan, hw.APIOpenCL}
	dir := t.TempDir()

	coldStore := openStore(t, dir)
	cold, err := experiments.BandwidthDocument("fig1b", p, apis,
		experiments.Options{Repetitions: 1, Seed: 42, Parallelism: 1, Cache: coldStore})
	if err != nil {
		t.Fatal(err)
	}
	if st := coldStore.Stats(); st.Executions == 0 {
		t.Fatalf("cold stats = %+v; the cold run executed nothing, so the test proves nothing", st)
	}

	for _, parallelism := range []int{1, 8} {
		warmStore := openStore(t, dir)
		warm, err := experiments.BandwidthDocument("fig1b", p, apis,
			experiments.Options{Repetitions: 1, Seed: 42, Parallelism: parallelism, Cache: warmStore})
		if err != nil {
			t.Fatal(err)
		}
		if st := warmStore.Stats(); st.Executions != 0 {
			t.Fatalf("parallelism %d: warm stats = %+v, want a pure-replay run with 0 executions", parallelism, st)
		}
		want, got := encodeDoc(t, cold), encodeDoc(t, warm)
		if !bytes.Equal(want, got) {
			t.Fatalf("parallelism %d: warm-store document differs from cold run:\n%s\nvs\n%s", parallelism, got, want)
		}
	}
}

// TestPersistentStoreCorruptEntryDegradesToMiss corrupts every persisted
// entry in place and requires the warm run to fall back to execution — same
// results, no errors, decode failures accounted.
func TestPersistentStoreCorruptEntryDegradesToMiss(t *testing.T) {
	p, err := platforms.ByID(platforms.IDGTX1050Ti)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cold := &core.Runner{Repetitions: 1, Seed: 42, Cache: openStore(t, dir)}
	executed, ok := runCell(t, cold, p, "vectoradd", hw.APIVulkan)
	if !ok {
		t.Fatal("vectoradd/vulkan unexpectedly excluded")
	}

	snaps, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("expected persisted entries in %s (err=%v)", dir, err)
	}
	for _, path := range snaps {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm := &core.Runner{Repetitions: 1, Seed: 42, Cache: openStore(t, dir)}
	recovered, _ := runCell(t, warm, p, "vectoradd", hw.APIVulkan)
	st := warm.Cache.Stats()
	if st.Executions != 1 {
		t.Fatalf("stats = %+v, want the corrupted entry to degrade to one re-execution", st)
	}
	var disk core.TierStats
	for _, tier := range st.Tiers {
		if tier.Tier == "disk" {
			disk = tier
		}
	}
	if disk.DecodeFailures != 1 {
		t.Fatalf("disk tier = %+v, want exactly 1 decode failure", disk)
	}
	requireSameResult(t, "clean vs recovered-from-corruption", executed, recovered)
}
