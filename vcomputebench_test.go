package vcomputebench_test

import (
	"testing"

	vcb "vcomputebench"
)

func TestPublicSuiteExposesPaperContents(t *testing.T) {
	benchmarks := vcb.Benchmarks()
	if len(benchmarks) < 11 {
		t.Fatalf("expected at least 11 benchmarks (9 Rodinia + 2 micro), got %d", len(benchmarks))
	}
	if len(vcb.Platforms()) != 4 {
		t.Fatalf("expected 4 platforms, got %d", len(vcb.Platforms()))
	}
	if len(vcb.Experiments()) < 12 {
		t.Fatalf("expected at least 12 experiments, got %d", len(vcb.Experiments()))
	}
	for _, name := range []string{"bfs", "gaussian", "pathfinder", "membandwidth"} {
		if _, err := vcb.BenchmarkByName(name); err != nil {
			t.Errorf("benchmark %q not registered: %v", name, err)
		}
	}
	for _, id := range []string{"gtx1050ti", "rx560", "adreno506", "powervr-g6430"} {
		if _, err := vcb.PlatformByID(id); err != nil {
			t.Errorf("platform %q missing: %v", id, err)
		}
	}
}

func TestPublicRunnerRunsQuickWorkload(t *testing.T) {
	p, err := vcb.PlatformByID("gtx1050ti")
	if err != nil {
		t.Fatal(err)
	}
	b, err := vcb.BenchmarkByName("vectoradd")
	if err != nil {
		t.Fatal(err)
	}
	runner := &vcb.Runner{Repetitions: 2, Seed: 1}
	res, err := runner.Run(p, b, vcb.Vulkan, vcb.Workload{Label: "t", Params: map[string]int{"n": 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if res.KernelTime <= 0 || res.TotalTime < res.KernelTime {
		t.Fatalf("implausible times: kernel=%v total=%v", res.KernelTime, res.TotalTime)
	}
}

func TestExperimentTablesRun(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		exp, err := vcb.ExperimentByID(id)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := exp.Run(vcb.ExperimentOptions{Repetitions: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(doc.Tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		if doc.Render() == "" {
			t.Fatalf("%s rendered empty output", id)
		}
		// The public results codec must round-trip every document.
		data, err := vcb.EncodeResultsJSON([]*vcb.Document{doc})
		if err != nil {
			t.Fatalf("%s: encoding results JSON: %v", id, err)
		}
		docs, err := vcb.DecodeResultsJSON(data)
		if err != nil {
			t.Fatalf("%s: decoding results JSON: %v", id, err)
		}
		if len(docs) != 1 || docs[0].ID != doc.ID {
			t.Fatalf("%s: round trip lost the document", id)
		}
	}
}
