//go:build !race

package vcomputebench_test

// raceDetectorEnabled is false in non-race builds; see race_on_test.go.
const raceDetectorEnabled = false
